"""R1-R4 over the token stream of one file.

Token-level analysis is deliberately conservative: each rule matches the
specific shapes this codebase uses (documented in docs/STATIC_ANALYSIS.md
with the known blind spots). The fixture suite in tools/kpq_lint/tests
pins every shape below, good and bad.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

from .lexer import LexedFile, Token
from .model import Config, Finding, in_dirs, normalize_line

# ----------------------------------------------------------------- grammar

ORDERS = ("relaxed", "consume", "acquire", "release", "acq_rel", "seq_cst")

ORDER_ANNOT_RE = re.compile(
    r"kpq-order:\s*(relaxed|consume|acquire|release|acq_rel|seq_cst)"
    r"\s+pairs-with\s+(\S.*)"
)
BOUND_ANNOT_RE = re.compile(r"kpq-bound:\s*\S")
BLOCK_ANNOT_RE = re.compile(r"kpq-block:\s*\S")
HAZARD_ANNOT_RE = re.compile(r"kpq-hazard:\s*\S")
HUBOK_ANNOT_RE = re.compile(r"kpq-hub-ok:\s*\S")

# std::atomic members whose call must name a memory_order. wait/notify are
# excluded (shared with condition_variable; R2 owns blocking waits).
ATOMIC_METHODS = frozenset(
    {
        "load",
        "store",
        "exchange",
        "compare_exchange_weak",
        "compare_exchange_strong",
        "fetch_add",
        "fetch_sub",
        "fetch_and",
        "fetch_or",
        "fetch_xor",
        "test_and_set",
        "clear",
    }
)
# Methods risky to match on arbitrary receivers: only flagged when the
# receiver is a known atomic (declared in-file or configured). `clear()`
# exists on vectors/strings and the hazard guard; `load()`/`store()` are
# atomic-only in this codebase, so they match on any receiver.
AMBIGUOUS_METHODS = frozenset({"clear"})

BLOCKING_IDENTS = frozenset(
    {
        "mutex",
        "timed_mutex",
        "recursive_mutex",
        "recursive_timed_mutex",
        "shared_mutex",
        "shared_timed_mutex",
        "condition_variable",
        "condition_variable_any",
        "lock_guard",
        "unique_lock",
        "scoped_lock",
        "shared_lock",
        "sleep_for",
        "sleep_until",
        "usleep",
        "nanosleep",
        "sem_wait",
        "sem_timedwait",
        "pthread_mutex_lock",
        "pthread_cond_wait",
        # The sanctioned continuation layer's blocking entry points: calling
        # them from a hot-path dir is what R2 exists to catch. The adapters
        # that deliberately block annotate with `kpq-block:`.
        "thread_parker",
        "park",
        "park_for",
        "park_until",
    }
)
BLOCKING_METHODS = frozenset({"wait", "wait_for", "wait_until"})

LOCK_TYPES = frozenset(
    {"lock_guard", "unique_lock", "scoped_lock", "shared_lock"}
)


class FileAnalysis:
    """One file's pre-pass + the four rules."""

    def __init__(self, path: str, text: str, cfg: Config):
        self.path = path
        self.cfg = cfg
        self.lf = LexedFile(path, text)
        self.toks = self.lf.tokens
        self.findings: List[Finding] = []
        self.depth = self._brace_depths()
        (
            self.atomic_names,
            self.ptr_atomic_names,
            self.decl_lines,
        ) = self._atomic_decls()

    # ------------------------------------------------------------ helpers

    def _emit(self, rule: str, tok: Token, message: str, fixit: str = ""):
        line_text = (
            self.lf.lines[tok.line - 1] if tok.line - 1 < len(self.lf.lines)
            else ""
        )
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=tok.line,
                col=tok.col,
                message=message,
                fixit=fixit,
                norm_line=normalize_line(line_text),
            )
        )

    def _brace_depths(self) -> List[int]:
        depths = []
        d = 0
        for t in self.toks:
            if t.kind == "punct" and t.text == "}":
                d -= 1
            depths.append(d)
            if t.kind == "punct" and t.text == "{":
                d += 1
        return depths

    def _atomic_decls(self) -> Tuple[Set[str], Set[str], Set[int]]:
        """Names declared `std::atomic<...> name` (or atomic_ref) in this
        file; ptr_atomic_names additionally have a pointer template arg."""
        names: Set[str] = set()
        ptr_names: Set[str] = set()
        decl_lines: Set[int] = set()
        toks = self.toks
        for i, t in enumerate(toks):
            if t.kind != "ident" or t.text not in ("atomic", "atomic_ref"):
                continue
            if i + 1 >= len(toks) or toks[i + 1].text != "<":
                continue
            # Balance the template args.
            j = i + 1
            bal = 0
            has_ptr = False
            while j < len(toks):
                tt = toks[j].text
                if tt == "<":
                    bal += 1
                elif tt == ">":
                    bal -= 1
                    if bal == 0:
                        break
                elif tt == ">>":
                    bal -= 2
                    if bal <= 0:
                        break
                elif tt == "*":
                    has_ptr = True
                j += 1
            if j + 1 >= len(toks):
                continue
            name_tok = toks[j + 1]
            if name_tok.kind != "ident":
                continue
            # `std::atomic<T> f();` is a function; good enough to accept —
            # a stray name in the set only tightens the rule.
            names.add(name_tok.text)
            if has_ptr:
                ptr_names.add(name_tok.text)
            decl_lines.add(name_tok.line)
        return names, ptr_names, decl_lines

    def _comment(self, line: int) -> str:
        return self.lf.comment_for(line)

    # ------------------------------------------------------------- R1

    def rule_r1(self) -> None:
        if not in_dirs(self.path, self.cfg.order_dirs):
            return
        toks = self.toks
        n = len(toks)
        annotate = in_dirs(self.path, self.cfg.annotate_dirs)
        # Locals that shadow an atomic member's name (`node* next = ...`):
        # name -> stack of brace depths where a shadowing decl is live.
        shadows: Dict[str, List[int]] = {}
        for i, t in enumerate(toks):
            d = self.depth[i]
            for stack in shadows.values():
                while stack and d < stack[-1]:
                    stack.pop()
            if t.kind != "ident":
                continue
            # --- member-call accesses -------------------------------
            if (
                t.text in ATOMIC_METHODS
                and i >= 1
                and toks[i - 1].text in (".", "->")
                and i + 1 < n
                and toks[i + 1].text == "("
            ):
                recv_name = self._receiver_name(i - 1)
                recv_known = recv_name is not None and (
                    recv_name in self.atomic_names
                    or recv_name in self.cfg.known_ptr_atomics
                )
                if t.text in AMBIGUOUS_METHODS and not recv_known:
                    continue
                orders, last_order_tok = self._call_orders(i + 1)
                if not orders:
                    self._emit(
                        "R1",
                        t,
                        f"atomic `{t.text}` without an explicit memory_order "
                        "(silent seq_cst)",
                        "name the order, e.g. "
                        f"`.{t.text}(..., std::memory_order_seq_cst)`; if a "
                        "weaker order is intended, add the kpq-order "
                        "justification",
                    )
                elif annotate and any(o != "seq_cst" for o in orders):
                    self._check_order_annotation(t, orders, last_order_tok)
            # --- fences ---------------------------------------------
            elif (
                t.text == "atomic_thread_fence"
                and i + 1 < n
                and toks[i + 1].text == "("
            ):
                orders, last_order_tok = self._call_orders(i + 1)
                if not orders:
                    self._emit(
                        "R1",
                        t,
                        "atomic_thread_fence without a recognizable "
                        "memory_order",
                        "pass std::memory_order_* directly",
                    )
                elif annotate and any(o != "seq_cst" for o in orders):
                    self._check_order_annotation(t, orders, last_order_tok)
            # --- operator-form (implicit seq_cst) accesses ----------
            elif t.text in self.atomic_names and t.line not in self.decl_lines:
                nxt = toks[i + 1].text if i + 1 < n else ""
                prv = toks[i - 1].text if i >= 1 else ""
                if prv in (".", "->", "::"):
                    continue  # member of some other object
                if prv in ("*", "&", "const") or (
                    i >= 1 and toks[i - 1].kind == "ident"
                ):
                    # `node* next = ...` — a local DECLARATION shadowing the
                    # atomic member's name, not an access to it. In scope
                    # until its enclosing block closes.
                    shadows.setdefault(t.text, []).append(self.depth[i])
                    continue
                if shadows.get(t.text):
                    continue  # use of the shadowing local, not the atomic
                implicit_ops = (
                    "=",
                    "==",
                    "!=",
                    "<",
                    ">",
                    "<=",
                    ">=",
                    "++",
                    "--",
                    "+=",
                    "-=",
                    "&=",
                    "|=",
                    "^=",
                )
                if nxt in implicit_ops or prv in ("++", "--"):
                    self._emit(
                        "R1",
                        t,
                        f"operator-form access on std::atomic `{t.text}` is "
                        "an implicit seq_cst operation",
                        f"use `{t.text}.load/store/fetch_*` with an explicit "
                        "memory_order",
                    )

    def _receiver_name(self, dot_idx: int) -> Optional[str]:
        """The base identifier of the receiver chain left of `.`/`->`,
        walking back over balanced `[...]`/`(...)` groups so that
        `state_[i]->store(...)` resolves to `state_`."""
        toks = self.toks
        j = dot_idx - 1
        while j >= 0 and toks[j].text in ("]", ")"):
            closer = toks[j].text
            opener = "[" if closer == "]" else "("
            bal = 0
            while j >= 0:
                if toks[j].text == closer:
                    bal += 1
                elif toks[j].text == opener:
                    bal -= 1
                    if bal == 0:
                        break
                j -= 1
            j -= 1
        if j >= 0 and toks[j].kind == "ident":
            return toks[j].text
        return None

    def _call_orders(self, open_paren: int) -> Tuple[List[str], Optional[Token]]:
        """memory_order names inside one balanced call argument list."""
        toks = self.toks
        bal = 0
        orders: List[str] = []
        last_tok: Optional[Token] = None
        j = open_paren
        while j < len(toks):
            tt = toks[j].text
            if tt == "(":
                bal += 1
            elif tt == ")":
                bal -= 1
                if bal == 0:
                    break
            elif toks[j].kind == "ident":
                m = re.fullmatch(r"memory_order_(\w+)", tt)
                if m and m.group(1) in ORDERS:
                    orders.append(m.group(1))
                    last_tok = toks[j]
                elif (
                    tt == "memory_order"
                    and j + 2 < len(toks)
                    and toks[j + 1].text == "::"
                    and toks[j + 2].text in ORDERS
                ):
                    orders.append(toks[j + 2].text)
                    last_tok = toks[j + 2]
            j += 1
        return orders, last_tok

    def _check_order_annotation(
        self, at: Token, orders: List[str], last_order_tok: Optional[Token]
    ) -> None:
        lines = {at.line}
        if last_order_tok is not None:
            lines.add(last_order_tok.line)
        annots: List[Tuple[str, str]] = []
        for ln in lines:
            annots.extend(ORDER_ANNOT_RE.findall(self._comment(ln)))
        weakest = [o for o in orders if o != "seq_cst"]
        if not annots:
            self._emit(
                "R1",
                at,
                f"non-seq_cst atomic access ({'/'.join(orders)}) without a "
                "kpq-order justification",
                f"add `// kpq-order: {weakest[0]} pairs-with <site>` on or "
                "above this line (docs/STATIC_ANALYSIS.md)",
            )
        elif not any(a[0] in orders for a in annots):
            self._emit(
                "R1",
                at,
                f"kpq-order annotation names `{annots[0][0]}` but the access "
                f"uses {'/'.join(orders)}",
                "make the annotation match the code (or fix the code)",
            )

    # ------------------------------------------------------------- R2

    def rule_r2(self) -> None:
        if not in_dirs(self.path, self.cfg.pure_dirs):
            return
        toks = self.toks
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "ident":
                continue
            if t.text in BLOCKING_IDENTS:
                if not BLOCK_ANNOT_RE.search(self._comment(t.line)):
                    self._emit(
                        "R2",
                        t,
                        f"blocking construct `{t.text}` in a wait-free "
                        "hot-path dir",
                        "move the blocking to the continuation layer "
                        "(src/sync/waiter_hub.hpp) or annotate the sanctioned "
                        "site: `// kpq-block: <why this may block>`",
                    )
            elif (
                t.text in BLOCKING_METHODS
                and i >= 1
                and toks[i - 1].text in (".", "->")
                and i + 1 < n
                and toks[i + 1].text == "("
            ):
                if not BLOCK_ANNOT_RE.search(self._comment(t.line)):
                    self._emit(
                        "R2",
                        t,
                        f"blocking wait `.{t.text}()` in a wait-free hot-path "
                        "dir",
                        "annotate the sanctioned site with `// kpq-block:` "
                        "or restructure onto the hub",
                    )
            elif t.text == "while" and i + 2 < n and toks[i + 1].text == "(":
                cond = toks[i + 2].text
                if cond in ("true", "1") and toks[i + 3].text == ")":
                    self._check_bound(t)
            elif (
                t.text == "for"
                and i + 3 < n
                and toks[i + 1].text == "("
                and toks[i + 2].text == ";"
                and toks[i + 3].text == ";"
            ):
                self._check_bound(t)

    def _check_bound(self, t: Token) -> None:
        if not BOUND_ANNOT_RE.search(self._comment(t.line)):
            self._emit(
                "R2",
                t,
                "unbounded loop in a wait-free hot-path dir without a "
                "kpq-bound justification",
                "state the bound: `// kpq-bound: <why each iteration "
                "implies another thread made progress>`",
            )

    # ------------------------------------------------------------- R3

    def rule_r3(self) -> None:
        if not in_dirs(self.path, self.cfg.hazard_dirs):
            return
        sources = self.ptr_atomic_names | set(self.cfg.known_ptr_atomics)
        toks = self.toks
        n = len(toks)
        for i, t in enumerate(toks):
            if (
                t.kind != "ident"
                or t.text != "load"
                or i < 2
                or toks[i - 1].text not in (".", "->")
                or toks[i - 2].text not in sources
                or i + 1 >= n
                or toks[i + 1].text != "("
            ):
                continue
            close = self._match_paren(i + 1)
            if close is None:
                continue
            # Direct deref of the freshly loaded pointer.
            if close + 1 < n and toks[close + 1].text == "->":
                if not self._hazard_ok(toks[close + 1].line, t.line):
                    self._emit(
                        "R3",
                        toks[close + 1],
                        f"dereference of raw pointer loaded from shared "
                        f"atomic `{toks[i - 2].text}` without hazard "
                        "protection",
                        "route through guard.protect()/protect_raw() "
                        "(reclaim/hazard_pointers.hpp) or justify with "
                        "`// kpq-hazard: <why no reclamation can race>`",
                    )
                continue
            # Assigned deref: `v = NAME.load(...)` ... later `v->...`.
            var = self._assigned_var(i - 2)
            if var is None:
                continue
            self._track_deref(var, i, close, toks[i - 2].text)

    def _match_paren(self, open_idx: int) -> Optional[int]:
        bal = 0
        for j in range(open_idx, len(self.toks)):
            tt = self.toks[j].text
            if tt == "(":
                bal += 1
            elif tt == ")":
                bal -= 1
                if bal == 0:
                    return j
        return None

    def _assigned_var(self, recv_idx: int) -> Optional[str]:
        """For `<var> = NAME.load(...)`: the identifier left of the `=`."""
        j = recv_idx - 1
        toks = self.toks
        # Skip over qualifiers between var and receiver (e.g. `v = this->X`).
        while j >= 0 and toks[j].text in ("::", ".", "->", "this"):
            j -= 2
        if j < 0 or toks[j].text != "=":
            return None
        if j - 1 >= 0 and toks[j - 1].kind == "ident":
            return toks[j - 1].text
        return None

    def _track_deref(
        self, var: str, load_idx: int, close_idx: int, source: str
    ) -> None:
        toks = self.toks
        n = len(toks)
        base_depth = self.depth[load_idx]
        protected = False
        j = close_idx + 1
        while j < n and self.depth[j] >= base_depth:
            t = toks[j]
            if t.kind == "ident":
                if t.text in ("protect", "protect_raw"):
                    protected = True
                elif t.text == var:
                    nxt = toks[j + 1].text if j + 1 < n else ""
                    if nxt == "=":
                        # Reassigned — but the RHS may still deref the OLD
                        # value (`p = p->next.load(...)`): scan to the `;`.
                        k = j + 2
                        while k < n and toks[k].text != ";":
                            if (
                                toks[k].text == var
                                and k + 1 < n
                                and toks[k + 1].text == "->"
                                and not protected
                                and not self._hazard_ok(
                                    toks[k].line, toks[load_idx].line
                                )
                            ):
                                self._emit(
                                    "R3",
                                    toks[k],
                                    f"`{var}` (loaded from shared atomic "
                                    f"`{source}`) dereferenced without "
                                    "hazard protection",
                                    "protect before dereference "
                                    "(guard.protect/protect_raw) or justify "
                                    "with `// kpq-hazard: <reason>`",
                                )
                                return
                            k += 1
                        return
                    if nxt == "->" and not protected:
                        if not self._hazard_ok(t.line, toks[load_idx].line):
                            self._emit(
                                "R3",
                                t,
                                f"`{var}` (loaded from shared atomic "
                                f"`{source}`) dereferenced without hazard "
                                "protection",
                                "protect before dereference "
                                "(guard.protect/protect_raw) or justify "
                                "with `// kpq-hazard: <reason>`",
                            )
                        return
            j += 1

    def _hazard_ok(self, *lines: int) -> bool:
        return any(HAZARD_ANNOT_RE.search(self._comment(ln)) for ln in lines)

    # ------------------------------------------------------------- R4

    def _is_function_decl(self, name_idx: int) -> bool:
        """`unique_lock<mutex> lk(m_);` declares a lock variable, but
        `unique_lock<mutex> lock() const {` declares a FUNCTION returning a
        lock. Disambiguate by what follows the parenthesized part: a
        variable's init ends the statement (`;`), a function signature
        continues with `{`, `const`, `noexcept`, `override`, or `->`."""
        toks = self.toks
        n = len(toks)
        if name_idx + 1 >= n or toks[name_idx + 1].text not in ("(", "{"):
            return False  # plain `lock_type name;` or `name = ...`: variable
        close = (
            self._match_paren(name_idx + 1)
            if toks[name_idx + 1].text == "("
            else None
        )
        if close is None:
            return False  # brace-init `name{...}`: variable
        nxt = toks[close + 1].text if close + 1 < n else ""
        return nxt in ("{", "const", "noexcept", "override", "->")

    def rule_r4(self) -> None:
        if not in_dirs(self.path, self.cfg.hub_dirs):
            return
        toks = self.toks
        n = len(toks)
        live_locks: List[Tuple[str, int]] = []  # (name, decl depth)
        for i, t in enumerate(toks):
            d = self.depth[i]
            while live_locks and d < live_locks[-1][1]:
                live_locks.pop()
            if t.kind != "ident":
                continue
            # Lock acquisition: `std::unique_lock<std::mutex> lk(...)` or
            # the repo idiom `auto lk = hub.lock();`.
            if t.text in LOCK_TYPES and i + 1 < n and toks[i + 1].text == "<":
                j = i + 1
                bal = 0
                while j < n:
                    if toks[j].text == "<":
                        bal += 1
                    elif toks[j].text == ">":
                        bal -= 1
                        if bal == 0:
                            break
                    j += 1
                if (
                    j + 1 < n
                    and toks[j + 1].kind == "ident"
                    and not self._is_function_decl(j + 1)
                ):
                    live_locks.append((toks[j + 1].text, self.depth[j + 1]))
                continue
            if (
                t.text == "auto"
                and i + 2 < n
                and toks[i + 1].kind == "ident"
                and toks[i + 2].text == "="
            ):
                # Scan the initializer statement for a `.lock()` call.
                j = i + 3
                while j < n and toks[j].text != ";":
                    if (
                        toks[j].text == "lock"
                        and toks[j - 1].text in (".", "->")
                        and j + 1 < n
                        and toks[j + 1].text == "("
                    ):
                        live_locks.append((toks[i + 1].text, self.depth[i]))
                        break
                    j += 1
                continue
            # Lock release: `lk.unlock()` / ownership move `std::move(lk)`.
            if (
                t.text == "unlock"
                and i >= 2
                and toks[i - 1].text in (".", "->")
            ):
                name = toks[i - 2].text
                live_locks = [lk for lk in live_locks if lk[0] != name]
                continue
            if t.text == "move" and i + 2 < n and toks[i + 1].text == "(":
                moved = toks[i + 2].text
                live_locks = [lk for lk in live_locks if lk[0] != moved]
                continue
            if not live_locks:
                continue
            # Violations while a lock is held.
            if t.text == "co_await":
                if not HUBOK_ANNOT_RE.search(self._comment(t.line)):
                    self._emit(
                        "R4",
                        t,
                        f"co_await while holding lock `{live_locks[-1][0]}` "
                        "— the frame may suspend with the lock held",
                        "release the lock before suspending (two-phase "
                        "notify, docs/ASYNC.md §5)",
                    )
            elif (
                t.text in ("resume", "destroy")
                and i >= 1
                and toks[i - 1].text in (".", "->")
                and i + 1 < n
                and toks[i + 1].text == "("
                and toks[i + 2].text == ")"
            ):
                if not HUBOK_ANNOT_RE.search(self._comment(t.line)):
                    self._emit(
                        "R4",
                        t,
                        f"coroutine `{t.text}()` while holding lock "
                        f"`{live_locks[-1][0]}` — the resumed frame may "
                        "re-enter the hub or be stack-destroyed",
                        "collect the continuation and fire it after unlock "
                        "(waiter_hub two-phase notify)",
                    )

    # ----------------------------------------------------------- driver

    def run(self) -> List[Finding]:
        self.rule_r1()
        self.rule_r2()
        self.rule_r3()
        self.rule_r4()
        self.findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return self.findings


def analyze_file(path: str, text: str, cfg: Config) -> List[Finding]:
    return FileAnalysis(path, text, cfg).run()
