"""Fixture-driven rule tests.

Each fixture under fixtures/ seeds violations marked with trailing
`// kpq-expect: <rule> [<rule>...]` comments (or is a clean counterexample
with no markers). The harness runs the analyzer over the fixture under the
directory that activates the rule and diffs actual (line, rule) findings
against the markers — so a rule that stops firing OR starts over-firing
fails the suite.
"""

import os
import re
import unittest

from kpq_lint.model import Config
from kpq_lint.rules import analyze_file

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
EXPECT_RE = re.compile(r"kpq-expect:\s*([A-Z0-9 ]+?)\s*$")


def load(name):
    with open(os.path.join(FIXTURES, name), encoding="utf-8") as f:
        return f.read()


def markers(text):
    out = []
    for ln, line in enumerate(text.splitlines(), 1):
        m = EXPECT_RE.search(line)
        if m:
            out.extend((ln, rule) for rule in m.group(1).split())
    return sorted(out)


def findings_for(name, as_path):
    text = load(name)
    got = sorted(
        (f.line, f.rule) for f in analyze_file(as_path, text, Config())
    )
    return got, markers(text)


class FixtureTests(unittest.TestCase):
    def check(self, name, as_path):
        got, want = findings_for(name, as_path)
        self.assertEqual(
            got,
            want,
            f"{name} (as {as_path}): findings disagree with kpq-expect "
            "markers",
        )

    def test_r1_bad(self):
        self.check("r1_bad.hpp", "src/core/r1_bad.hpp")

    def test_r1_clean(self):
        self.check("r1_clean.hpp", "src/core/r1_clean.hpp")

    def test_r2_bad(self):
        self.check("r2_bad.hpp", "src/core/r2_bad.hpp")

    def test_r2_clean(self):
        self.check("r2_clean.hpp", "src/core/r2_clean.hpp")

    def test_r3_bad(self):
        self.check("r3_bad.hpp", "src/core/r3_bad.hpp")

    def test_r3_clean(self):
        self.check("r3_clean.hpp", "src/core/r3_clean.hpp")

    def test_r4_bad(self):
        self.check("r4_bad.hpp", "src/async/r4_bad.hpp")

    def test_r4_clean(self):
        self.check("r4_clean.hpp", "src/async/r4_clean.hpp")


class DirGatingTests(unittest.TestCase):
    def test_r2_inactive_in_sync(self):
        """src/sync is the sanctioned blocking layer: R2 must not fire."""
        text = load("r2_bad.hpp")
        findings = analyze_file("src/sync/r2_bad.hpp", text, Config())
        self.assertEqual([f for f in findings if f.rule == "R2"], [])

    def test_r3_inactive_outside_hazard_dirs(self):
        text = load("r3_bad.hpp")
        findings = analyze_file("src/obs/r3_bad.hpp", text, Config())
        self.assertEqual([f for f in findings if f.rule == "R3"], [])

    def test_nothing_fires_outside_src(self):
        for name in ("r1_bad.hpp", "r2_bad.hpp", "r3_bad.hpp", "r4_bad.hpp"):
            findings = analyze_file(f"tests/{name}", load(name), Config())
            self.assertEqual(findings, [], name)


class ShapeTests(unittest.TestCase):
    """Targeted shapes that burned us while linting the real tree."""

    def test_subscripted_receiver(self):
        text = (
            "struct s {\n"
            "  void f(int i) {\n"
            "    state_[i]->store(nullptr, std::memory_order_relaxed);\n"
            "  }\n"
            "};\n"
        )
        findings = analyze_file("src/core/x.hpp", text, Config())
        self.assertEqual([(f.line, f.rule) for f in findings], [(3, "R1")])

    def test_subscripted_receiver_annotated(self):
        text = (
            "struct s {\n"
            "  void f(int i) {\n"
            "    // kpq-order: relaxed pairs-with the ctor fence\n"
            "    state_[i]->store(nullptr, std::memory_order_relaxed);\n"
            "  }\n"
            "};\n"
        )
        self.assertEqual(analyze_file("src/core/x.hpp", text, Config()), [])

    def test_annotation_on_wrapped_order_line(self):
        """The order argument may sit on a later line than the method; the
        annotation is accepted next to either."""
        text = (
            "void f() {\n"
            "  long phase =\n"
            "      // kpq-order: acq_rel pairs-with the peer fetch_adds\n"
            "      counter_->fetch_add(1, std::memory_order_acq_rel);\n"
            "}\n"
        )
        self.assertEqual(analyze_file("src/core/x.hpp", text, Config()), [])

    def test_known_ptr_atomic_from_other_header(self):
        """head_ is configured as a shared node source even when its
        declaration lives in another file."""
        text = (
            "int f() {\n"
            "  node* p = head_.load(std::memory_order_seq_cst);\n"
            "  return p->value;\n"
            "}\n"
        )
        findings = analyze_file("src/core/x.hpp", text, Config())
        self.assertEqual([(f.line, f.rule) for f in findings], [(3, "R3")])


if __name__ == "__main__":
    unittest.main()
