"""Baseline semantics: suppression by fingerprint, the shrink-only rule
(stale entries are errors), and entry validation."""

import json
import os
import tempfile
import unittest

from kpq_lint import baseline
from kpq_lint.model import Config
from kpq_lint.rules import analyze_file

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def bad_findings():
    with open(os.path.join(FIXTURES, "r1_bad.hpp"), encoding="utf-8") as f:
        text = f.read()
    return analyze_file("src/core/r1_bad.hpp", text, Config())


def entry_for(finding, justification="fixture suppression"):
    return {
        "rule": finding.rule,
        "path": finding.path,
        "fingerprint": finding.fingerprint,
        "count": 1,
        "justification": justification,
    }


class ApplyTests(unittest.TestCase):
    def test_full_suppression(self):
        findings = bad_findings()
        self.assertTrue(findings)
        entries = [entry_for(f) for f in findings]
        remaining, stale = baseline.apply(findings, entries)
        self.assertEqual(remaining, [])
        self.assertEqual(stale, [])

    def test_partial_suppression(self):
        findings = bad_findings()
        entries = [entry_for(findings[0])]
        remaining, stale = baseline.apply(findings, entries)
        self.assertEqual(len(remaining), len(findings) - 1)
        self.assertEqual(stale, [])

    def test_stale_entry_detected(self):
        findings = bad_findings()
        ghost = {
            "rule": "R2",
            "path": "src/core/gone.hpp",
            "fingerprint": "0" * 16,
            "count": 1,
            "justification": "suppresses a finding that no longer fires",
        }
        remaining, stale = baseline.apply(findings, [ghost])
        self.assertEqual(len(remaining), len(findings))
        self.assertEqual(stale, [ghost])

    def test_count_budget(self):
        findings = bad_findings()
        # Two identical findings would share a fingerprint; here each is
        # unique, so a count of 2 still only suppresses one occurrence.
        entries = [dict(entry_for(findings[0]), count=2)]
        remaining, _ = baseline.apply(findings, entries)
        self.assertEqual(len(remaining), len(findings) - 1)


class LoadTests(unittest.TestCase):
    def write(self, data):
        fd, path = tempfile.mkstemp(suffix=".json")
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump(data, f)
        self.addCleanup(os.unlink, path)
        return path

    def test_load_valid(self):
        path = self.write(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "R1",
                        "path": "src/x.hpp",
                        "fingerprint": "ab" * 8,
                        "justification": "because",
                    }
                ],
            }
        )
        entries = baseline.load(path)
        self.assertEqual(entries[0]["count"], 1)

    def test_load_rejects_missing_justification(self):
        path = self.write(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "R1",
                        "path": "src/x.hpp",
                        "fingerprint": "ab" * 8,
                    }
                ],
            }
        )
        with self.assertRaises(baseline.BaselineError):
            baseline.load(path)

    def test_load_rejects_unknown_version(self):
        path = self.write({"version": 2, "entries": []})
        with self.assertRaises(baseline.BaselineError):
            baseline.load(path)

    def test_checked_in_baseline_is_valid_and_empty(self):
        repo_baseline = os.path.join(
            os.path.dirname(__file__), "..", "baseline.json"
        )
        entries = baseline.load(repo_baseline)
        self.assertEqual(
            entries,
            [],
            "the checked-in baseline must stay empty: annotate or fix "
            "findings instead of suppressing them",
        )


if __name__ == "__main__":
    unittest.main()
