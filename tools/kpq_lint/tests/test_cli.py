"""End-to-end CLI tests over a synthetic repo assembled from fixtures:
exit codes, JSON output, baseline enforcement (including shrink-only), and
the parse cache."""

import contextlib
import io
import json
import os
import shutil
import tempfile
import unittest

from kpq_lint import cli
from kpq_lint.model import Config
from kpq_lint.rules import analyze_file

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


class CliHarness(unittest.TestCase):
    def setUp(self):
        self.repo = tempfile.mkdtemp(prefix="kpq_lint_test_")
        self.addCleanup(shutil.rmtree, self.repo, ignore_errors=True)
        os.makedirs(os.path.join(self.repo, "src", "core"))
        os.makedirs(os.path.join(self.repo, "tools", "kpq_lint"))
        self.write_baseline({"version": 1, "entries": []})

    def add_fixture(self, name, rel):
        dst = os.path.join(self.repo, rel)
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        shutil.copyfile(os.path.join(FIXTURES, name), dst)

    def write_baseline(self, data):
        with open(
            os.path.join(self.repo, "tools", "kpq_lint", "baseline.json"),
            "w",
            encoding="utf-8",
        ) as f:
            json.dump(data, f)

    def run_cli(self, *extra):
        argv = ["--repo", self.repo, "--no-libclang", *extra]
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = cli.run(argv)
        return code, out.getvalue(), err.getvalue()

    def fingerprints(self, name, rel):
        with open(os.path.join(FIXTURES, name), encoding="utf-8") as f:
            text = f.read()
        return [f_.fingerprint for f_ in analyze_file(rel, text, Config())]


class ExitCodeTests(CliHarness):
    def test_clean_tree_exits_zero(self):
        self.add_fixture("r1_clean.hpp", "src/core/r1_clean.hpp")
        code, out, err = self.run_cli()
        self.assertEqual(code, 0, err)
        self.assertIn("clean", err)

    def test_violations_exit_one(self):
        self.add_fixture("r1_bad.hpp", "src/core/r1_bad.hpp")
        code, out, _ = self.run_cli()
        self.assertEqual(code, 1)
        self.assertIn("[R1]", out)
        self.assertIn("fix-it:", out)

    def test_empty_repo_exits_two(self):
        code, _, err = self.run_cli()
        self.assertEqual(code, 2)
        self.assertIn("nothing to analyze", err)

    def test_missing_explicit_file_exits_two(self):
        code, _, _ = self.run_cli("src/core/absent.hpp")
        self.assertEqual(code, 2)


class BaselineCliTests(CliHarness):
    def test_baselined_findings_pass(self):
        self.add_fixture("r1_bad.hpp", "src/core/r1_bad.hpp")
        fps = self.fingerprints("r1_bad.hpp", "src/core/r1_bad.hpp")
        self.write_baseline(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "R1",
                        "path": "src/core/r1_bad.hpp",
                        "fingerprint": fp,
                        "count": 1,
                        "justification": "fixture",
                    }
                    for fp in fps
                ],
            }
        )
        code, _, err = self.run_cli()
        self.assertEqual(code, 0, err)

    def test_stale_entry_fails_shrink_only(self):
        self.add_fixture("r1_clean.hpp", "src/core/r1_clean.hpp")
        self.write_baseline(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "R1",
                        "path": "src/core/gone.hpp",
                        "fingerprint": "0" * 16,
                        "count": 1,
                        "justification": "no longer fires",
                    }
                ],
            }
        )
        code, out, _ = self.run_cli()
        self.assertEqual(code, 1)
        self.assertIn("stale", out)

    def test_allow_stale_downgrades(self):
        self.add_fixture("r1_clean.hpp", "src/core/r1_clean.hpp")
        self.write_baseline(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "R1",
                        "path": "src/core/gone.hpp",
                        "fingerprint": "0" * 16,
                        "count": 1,
                        "justification": "no longer fires",
                    }
                ],
            }
        )
        code, _, _ = self.run_cli("--allow-stale")
        self.assertEqual(code, 0)

    def test_invalid_baseline_exits_two(self):
        self.add_fixture("r1_clean.hpp", "src/core/r1_clean.hpp")
        self.write_baseline({"version": 1, "entries": [{"rule": "R1"}]})
        code, _, err = self.run_cli()
        self.assertEqual(code, 2)
        self.assertIn("justification", err)


class OutputAndCacheTests(CliHarness):
    def test_json_format(self):
        self.add_fixture("r1_bad.hpp", "src/core/r1_bad.hpp")
        code, out, _ = self.run_cli("--format", "json")
        self.assertEqual(code, 1)
        doc = json.loads(out)
        self.assertTrue(doc["findings"])
        for f in doc["findings"]:
            self.assertEqual(
                sorted(f)
                if "fixit" not in f
                else sorted(k for k in f if k != "fixit"),
                ["col", "fingerprint", "line", "message", "path", "rule"],
            )

    def test_cache_hits_on_second_run(self):
        self.add_fixture("r1_clean.hpp", "src/core/r1_clean.hpp")
        build = os.path.join(self.repo, "build")
        code, _, err = self.run_cli("--build-dir", build)
        self.assertEqual(code, 0, err)
        self.assertIn("(0 cached", err)
        code, _, err = self.run_cli("--build-dir", build)
        self.assertEqual(code, 0, err)
        self.assertIn("(1 cached", err)

    def test_cache_invalidated_by_edit(self):
        self.add_fixture("r1_clean.hpp", "src/core/r1_clean.hpp")
        build = os.path.join(self.repo, "build")
        self.run_cli("--build-dir", build)
        target = os.path.join(self.repo, "src", "core", "r1_clean.hpp")
        with open(target, "a", encoding="utf-8") as f:
            f.write("\nint touched;\n")
        code, _, err = self.run_cli("--build-dir", build)
        self.assertEqual(code, 0, err)
        self.assertIn("(0 cached", err)

    def test_explicit_path_restriction(self):
        self.add_fixture("r1_bad.hpp", "src/core/r1_bad.hpp")
        self.add_fixture("r1_clean.hpp", "src/core/r1_clean.hpp")
        code, out, _ = self.run_cli("src/core/r1_clean.hpp")
        self.assertEqual(code, 0)
        self.assertNotIn("r1_bad", out)


if __name__ == "__main__":
    unittest.main()
