// R4 clean counterexamples (analyzed under a src/async/ path): the
// two-phase notify shape, explicit unlock, ownership move, and the
// `lock()` accessor that must not register as a lock variable.
#pragma once

namespace fix {

struct r4_clean {
  // A method NAMED lock returning a lock is a function declaration, not a
  // lock acquisition.
  std::unique_lock<std::mutex> lock() const {
    return std::unique_lock<std::mutex>(m_);
  }

  template <typename Handle>
  void two_phase(Handle h) {
    waiter* fire = nullptr;
    {
      auto lk = hub_.lock();
      fire = collect_under_lock();
    }  // lock scope closed before firing
    h.resume();
  }

  template <typename Handle>
  void explicit_unlock(Handle h) {
    auto lk = hub_.lock();
    lk.unlock();
    h.resume();
  }

  template <typename Handle>
  void moved_out(Handle h) {
    auto lk = hub_.lock();
    hub_.notify_all(std::move(lk));  // ownership left this frame
    h.resume();
  }

  task justified_await() {
    std::unique_lock<std::mutex> lk(m_);
    // kpq-hub-ok: fixture — this awaitable completes synchronously and
    // never suspends the frame
    co_await ready_inline();
  }
};

}  // namespace fix
