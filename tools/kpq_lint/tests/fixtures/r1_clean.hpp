// R1 clean counterexamples: every shape here must produce zero findings.
#pragma once

namespace fix {

struct r1_clean {
  std::atomic<int> counter_{0};
  std::atomic<long> total_{0};

  int explicit_seq_cst() {
    return counter_.load(std::memory_order_seq_cst);
  }

  int justified_relaxed() {
    // kpq-order: relaxed pairs-with none (statistics counter)
    return counter_.load(std::memory_order_relaxed);
  }

  void justified_trailing() {
    // kpq-order: release pairs-with the acquire load in justified_scoped
    counter_.store(1, std::memory_order_release);
  }

  int justified_scoped_enum() {
    // kpq-order: acquire pairs-with the release store in justified_trailing
    return counter_.load(std::memory_order::acquire);
  }

  long shadowed_local() {
    long total_ = 0;  // declaration shadows the atomic member
    total_ += 1;      // operates on the local, not the atomic
    return total_;
  }

  void fence_with_order() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
};

}  // namespace fix
