// R3 violation fixtures (analyzed under a src/core/ path): raw pointers
// loaded from shared atomics dereferenced without hazard protection.
#pragma once

namespace fix {

struct node {
  std::atomic<node*> next{nullptr};
  int value = 0;
};

struct r3_bad {
  std::atomic<node*> head_{nullptr};

  int direct_deref() {
    return head_.load(std::memory_order_seq_cst)->value;  // kpq-expect: R3
  }

  int tracked_deref() {
    node* p = head_.load(std::memory_order_seq_cst);
    return p->value;  // kpq-expect: R3
  }

  int reassignment_rhs_deref() {
    node* p = head_.load(std::memory_order_seq_cst);
    p = p->next.load(std::memory_order_seq_cst);  // kpq-expect: R3
    return p == nullptr ? 0 : 1;
  }
};

}  // namespace fix
