// R1 violation fixtures. Each `kpq-expect: <rule>` marker names the rule(s)
// the linter must report on that line; the test harness diffs markers
// against actual findings. These files are lint fixtures only — they are
// never compiled.
#pragma once

namespace fix {

struct r1_bad {
  std::atomic<int> counter_{0};

  int silent_seq_cst() {
    return counter_.load();  // kpq-expect: R1
  }

  void operator_increment() {
    counter_++;  // kpq-expect: R1
  }

  void operator_assign() {
    counter_ = 7;  // kpq-expect: R1
  }

  int missing_annotation() {
    return counter_.load(std::memory_order_relaxed);  // kpq-expect: R1
  }

  void mismatched_annotation() {
    // kpq-order: acquire pairs-with a site the code does not match
    counter_.store(1, std::memory_order_relaxed);  // kpq-expect: R1
  }

  void silent_fence() {
    std::atomic_thread_fence(no_order_here());  // kpq-expect: R1
  }
};

}  // namespace fix
