// R2 clean counterexamples (analyzed under a src/core/ path): bounded
// loops, justified unbounded loops, and justified sanctioned blocking.
#pragma once

namespace fix {

struct r2_clean {
  void bounded_for(int n) {
    for (int i = 0; i < n; ++i) {
      step(i);
    }
  }

  void justified_loop() {
    // kpq-bound: every iteration observes a CAS by another thread, so an
    // iteration that repeats implies global progress (lock-free helping)
    for (;;) {
      if (try_once()) return;
    }
  }

  void justified_while() {
    // kpq-bound: retries are bounded by max_tries_ceiling (clamped knob)
    while (true) {
      if (try_once()) return;
    }
  }

  template <typename Hub, typename Lk>
  void sanctioned_park(Hub& hub, Lk& lk) {
    // kpq-block: fixture for the sanctioned blocking-facade annotation
    thread_parker p;
    // kpq-block: sanctioned blocking facade (see above)
    p.park(hub, lk);
  }

  template <typename Cv, typename Lk>
  void sanctioned_wait(Cv& cv, Lk& lk) {
    // kpq-block: drain() is a shutdown-only path, never an operation
    cv.wait(lk);
  }
};

}  // namespace fix
