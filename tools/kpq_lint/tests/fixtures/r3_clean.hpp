// R3 clean counterexamples (analyzed under a src/core/ path).
#pragma once

namespace fix {

struct node {
  std::atomic<node*> next{nullptr};
  int value = 0;
};

struct r3_clean {
  std::atomic<node*> head_{nullptr};

  template <typename Guard>
  int protect_path(Guard& g) {
    node* p = g.protect(0, head_);  // announce+validate inside protect()
    return p->value;
  }

  template <typename Guard>
  int protect_raw_path(Guard& g) {
    node* p = head_.load(std::memory_order_seq_cst);
    g.protect_raw(0, p);  // caller announces, then validates
    return p == head_.load(std::memory_order_seq_cst) ? p->value : 0;
  }

  int justified_quiescent() {
    // kpq-hazard: fixture is single-threaded by contract — nothing is
    // retired while this runs
    node* p = head_.load(std::memory_order_seq_cst);
    return p->value;
  }

  bool no_deref() {
    node* p = head_.load(std::memory_order_seq_cst);
    return p == nullptr;  // comparing the pointer never touches the node
  }
};

}  // namespace fix
