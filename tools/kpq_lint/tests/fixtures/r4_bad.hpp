// R4 violation fixtures (analyzed under a src/async/ path): locks held
// across a coroutine suspend or resume boundary.
#pragma once

namespace fix {

struct r4_bad {
  task lock_across_await() {
    std::unique_lock<std::mutex> lk(m_);
    co_await ready();  // kpq-expect: R4
  }

  template <typename Handle>
  void resume_under_lock(Handle h) {
    auto lk = hub_.lock();
    h.resume();  // kpq-expect: R4
  }

  template <typename Handle>
  void destroy_under_lock(Handle h) {
    std::scoped_lock<std::mutex> guard(m_);
    h.destroy();  // kpq-expect: R4
  }
};

}  // namespace fix
