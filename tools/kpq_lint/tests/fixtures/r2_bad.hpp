// R2 violation fixtures: blocking constructs and unbounded loops in a
// wait-free hot-path directory (the harness analyzes this file under a
// src/core/ path).
#pragma once

namespace fix {

struct r2_bad {
  void unbounded_for() {
    for (;;) {  // kpq-expect: R2
    }
  }

  void unbounded_while() {
    while (true) {  // kpq-expect: R2
    }
  }

  void unbounded_while_one() {
    while (1) {  // kpq-expect: R2
    }
  }

  void locks() {
    std::mutex m;  // kpq-expect: R2
    std::lock_guard<std::mutex> g(m);  // kpq-expect: R2 R2
  }

  void naps() {
    std::this_thread::sleep_for(ten_ms());  // kpq-expect: R2
  }

  template <typename Cv, typename Lk>
  void waits(Cv& cv, Lk& lk) {
    cv.wait(lk);  // kpq-expect: R2
  }

  template <typename Hub, typename Lk>
  void parks(Hub& hub, Lk& lk) {
    thread_parker p;  // kpq-expect: R2
    p.park(hub, lk);  // kpq-expect: R2
  }
};

}  // namespace fix
